#include "ebsn/interest.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ebsn/generator.h"

namespace ses::ebsn {
namespace {

/// 3 users with known tag sets against hand-checkable events.
EbsnDataset MakeHandDataset() {
  EbsnDataset ds;
  for (int t = 0; t < 6; ++t) {
    ds.tags().Intern("t" + std::to_string(t));
  }
  ds.groups().push_back({"g0", {0, 1, 2, 3, 4, 5}, {0, 1, 2}});
  ds.users().resize(3);
  ds.users()[0] = {{0}, {0, 1}};        // tags {0,1}
  ds.users()[1] = {{0}, {0, 1, 2, 3}};  // tags {0,1,2,3}
  ds.users()[2] = {{0}, {4, 5}};        // tags {4,5}
  ds.events().push_back({0, {0, 1}});   // event tags {0,1}
  return ds;
}

TEST(InterestModelTest, JaccardMatchesHandComputation) {
  const EbsnDataset ds = MakeHandDataset();
  InterestModel model(ds);
  const std::vector<TagId> event_tags{0, 1};
  // user0: |{0,1} ∩ {0,1}| / |{0,1}| = 2/2 = 1.
  EXPECT_FLOAT_EQ(model.UserEventJaccard(0, event_tags), 1.0f);
  // user1: 2 / 4 = 0.5.
  EXPECT_FLOAT_EQ(model.UserEventJaccard(1, event_tags), 0.5f);
  // user2: 0 / 4 = 0.
  EXPECT_FLOAT_EQ(model.UserEventJaccard(2, event_tags), 0.0f);
}

TEST(InterestModelTest, EventInterestsContainsExactlyOverlappingUsers) {
  const EbsnDataset ds = MakeHandDataset();
  InterestModel model(ds);
  const auto interests = model.EventInterests({0, 1}, 0.0f);
  ASSERT_EQ(interests.size(), 2u);
  EXPECT_EQ(interests[0].user, 0u);
  EXPECT_FLOAT_EQ(interests[0].interest, 1.0f);
  EXPECT_EQ(interests[1].user, 1u);
  EXPECT_FLOAT_EQ(interests[1].interest, 0.5f);
}

TEST(InterestModelTest, MinInterestFilters) {
  const EbsnDataset ds = MakeHandDataset();
  InterestModel model(ds);
  const auto interests = model.EventInterests({0, 1}, 0.6f);
  ASSERT_EQ(interests.size(), 1u);
  EXPECT_EQ(interests[0].user, 0u);
}

TEST(InterestModelTest, ScratchResetsBetweenCalls) {
  const EbsnDataset ds = MakeHandDataset();
  InterestModel model(ds);
  const auto first = model.EventInterests({0, 1}, 0.0f);
  const auto second = model.EventInterests({0, 1}, 0.0f);
  EXPECT_EQ(first, second);
}

TEST(InterestModelTest, UsersWithTagIndex) {
  const EbsnDataset ds = MakeHandDataset();
  InterestModel model(ds);
  EXPECT_EQ(model.UsersWithTag(0), (std::vector<EbsnUserId>{0, 1}));
  EXPECT_EQ(model.UsersWithTag(4), (std::vector<EbsnUserId>{2}));
}

TEST(InterestModelTest, InvertedIndexAgreesWithReferenceOnSynthetic) {
  SyntheticMeetupConfig config;
  config.num_users = 300;
  config.num_events = 50;
  config.num_groups = 25;
  config.num_tags = 40;
  config.seed = 5;
  const EbsnDataset ds = GenerateSyntheticMeetup(config);
  InterestModel model(ds);

  for (size_t e = 0; e < 10; ++e) {
    const auto& tags = ds.events()[e].tags;
    const auto sparse = model.EventInterests(tags, 0.0f);
    // Cross-check every user against the merge-join reference.
    size_t cursor = 0;
    for (EbsnUserId u = 0; u < ds.users().size(); ++u) {
      const float reference = model.UserEventJaccard(u, tags);
      if (cursor < sparse.size() && sparse[cursor].user == u) {
        EXPECT_NEAR(sparse[cursor].interest, reference, 1e-6)
            << "event " << e << " user " << u;
        ++cursor;
      } else {
        EXPECT_EQ(reference, 0.0f) << "event " << e << " user " << u;
      }
    }
    EXPECT_EQ(cursor, sparse.size());
  }
}

// EventInterests is const-thread-safe (per-thread scatter scratch): many
// threads hammering one shared model must each reproduce the serial
// answer — which itself agrees with the UserEventJaccard reference (the
// InvertedIndexAgreesWithReferenceOnSynthetic test above pins that leg).
TEST(InterestModelTest, ConcurrentEventInterestsMatchSerial) {
  SyntheticMeetupConfig config;
  config.num_users = 400;
  config.num_events = 60;
  config.num_groups = 30;
  config.num_tags = 50;
  config.seed = 11;
  const EbsnDataset ds = GenerateSyntheticMeetup(config);
  const InterestModel model(ds);

  std::vector<std::vector<UserInterest>> expected;
  expected.reserve(ds.events().size());
  for (const auto& event : ds.events()) {
    expected.push_back(model.EventInterests(event.tags, 0.05f));
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 5;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([w, &ds, &model, &expected, &mismatches] {
      for (int round = 0; round < kRounds; ++round) {
        // Stagger the start so threads sweep different events at once.
        for (size_t i = 0; i < ds.events().size(); ++i) {
          const size_t e = (i + static_cast<size_t>(w) * 7) %
                           ds.events().size();
          if (model.EventInterests(ds.events()[e].tags, 0.05f) !=
              expected[e]) {
            ++mismatches[w];
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int w = 0; w < kThreads; ++w) {
    EXPECT_EQ(mismatches[w], 0) << "thread " << w;
  }
}

TEST(InterestModelTest, ResultsSortedByUser) {
  SyntheticMeetupConfig config;
  config.num_users = 200;
  config.num_events = 20;
  config.num_groups = 10;
  config.num_tags = 30;
  const EbsnDataset ds = GenerateSyntheticMeetup(config);
  InterestModel model(ds);
  for (size_t e = 0; e < ds.events().size(); ++e) {
    const auto sparse = model.EventInterests(ds.events()[e].tags, 0.0f);
    for (size_t i = 1; i < sparse.size(); ++i) {
      EXPECT_LT(sparse[i - 1].user, sparse[i].user);
    }
  }
}

}  // namespace
}  // namespace ses::ebsn
