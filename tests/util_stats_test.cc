#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ses::util {
namespace {

TEST(RunningStatTest, EmptyDefaults) {
  RunningStat rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.sum(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat rs;
  rs.Add(5.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_EQ(rs.mean(), 5.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.min(), 5.0);
  EXPECT_EQ(rs.max(), 5.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance of the classic dataset: 32/7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(rs.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(rs.min(), 2.0);
  EXPECT_EQ(rs.max(), 9.0);
  EXPECT_EQ(rs.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesCombined) {
  RunningStat left;
  RunningStat right;
  RunningStat combined;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3.0;
    left.Add(x);
    combined.Add(x);
  }
  for (int i = 0; i < 70; ++i) {
    const double x = i * -0.21 + 8.0;
    right.Add(x);
    combined.Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_NEAR(left.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), combined.variance(), 1e-9);
  EXPECT_EQ(left.min(), combined.min());
  EXPECT_EQ(left.max(), combined.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStat b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), 2.0);
}

TEST(PercentileTest, InterpolatesLinearly) {
  const std::vector<double> sorted{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 1.0 / 3.0), 20.0);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_EQ(PercentileSorted({7.5}, 0.5), 7.5);
}

// The empty-window contract: no abort, count = 0, NaN-marked order
// statistics. This is what keeps the bench harness alive when a trace
// lane (or solver) saw zero requests.
TEST(SummarizeTest, EmptySample) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_TRUE(std::isnan(s.min));
  EXPECT_TRUE(std::isnan(s.max));
  EXPECT_TRUE(std::isnan(s.p50));
  EXPECT_TRUE(std::isnan(s.p90));
  EXPECT_TRUE(std::isnan(s.p99));
  EXPECT_FALSE(s.ToString().empty());
}

TEST(PercentileTest, EmptySampleYieldsNaNNotAbort) {
  EXPECT_TRUE(std::isnan(PercentileSorted({}, 0.0)));
  EXPECT_TRUE(std::isnan(PercentileSorted({}, 0.5)));
  EXPECT_TRUE(std::isnan(PercentileSorted({}, 1.0)));
}

TEST(SummarizeTest, BasicFields) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(static_cast<double>(i));
  Summary s = Summarize(values);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(SummarizeTest, UnsortedInputHandled) {
  Summary s = Summarize({5.0, 1.0, 3.0});
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

}  // namespace
}  // namespace ses::util
