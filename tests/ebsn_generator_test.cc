#include "ebsn/generator.h"

#include <gtest/gtest.h>

#include "ebsn/dataset_stats.h"

namespace ses::ebsn {
namespace {

SyntheticMeetupConfig SmallConfig() {
  SyntheticMeetupConfig config;
  config.num_users = 500;
  config.num_events = 300;
  config.num_groups = 40;
  config.num_tags = 60;
  config.num_slots = 8;
  config.seed = 99;
  return config;
}

TEST(GeneratorTest, ProducesRequestedSizes) {
  const EbsnDataset ds = GenerateSyntheticMeetup(SmallConfig());
  EXPECT_EQ(ds.users().size(), 500u);
  EXPECT_EQ(ds.events().size(), 300u);
  EXPECT_EQ(ds.groups().size(), 40u);
  EXPECT_EQ(ds.tags().size(), 60u);
  EXPECT_EQ(ds.num_slots(), 8u);
}

TEST(GeneratorTest, OutputValidates) {
  const EbsnDataset ds = GenerateSyntheticMeetup(SmallConfig());
  EXPECT_TRUE(ds.Validate().ok());
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  const EbsnDataset a = GenerateSyntheticMeetup(SmallConfig());
  const EbsnDataset b = GenerateSyntheticMeetup(SmallConfig());
  ASSERT_EQ(a.users().size(), b.users().size());
  for (size_t u = 0; u < a.users().size(); ++u) {
    EXPECT_EQ(a.users()[u].groups, b.users()[u].groups);
    EXPECT_EQ(a.users()[u].tags, b.users()[u].tags);
  }
  ASSERT_EQ(a.events().size(), b.events().size());
  for (size_t e = 0; e < a.events().size(); ++e) {
    EXPECT_EQ(a.events()[e].organizer, b.events()[e].organizer);
  }
  EXPECT_EQ(a.checkins().size(), b.checkins().size());
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  SyntheticMeetupConfig config = SmallConfig();
  const EbsnDataset a = GenerateSyntheticMeetup(config);
  config.seed = 100;
  const EbsnDataset b = GenerateSyntheticMeetup(config);
  size_t differing = 0;
  for (size_t u = 0; u < a.users().size(); ++u) {
    if (a.users()[u].groups != b.users()[u].groups) ++differing;
  }
  EXPECT_GT(differing, a.users().size() / 4);
}

TEST(GeneratorTest, EveryUserJoinsAtLeastOneGroup) {
  const EbsnDataset ds = GenerateSyntheticMeetup(SmallConfig());
  for (const UserProfile& user : ds.users()) {
    EXPECT_GE(user.groups.size(), 1u);
    EXPECT_GE(user.tags.size(), 1u);
  }
}

TEST(GeneratorTest, GroupTagCountsWithinBounds) {
  SyntheticMeetupConfig config = SmallConfig();
  config.group_tags_min = 3;
  config.group_tags_max = 10;
  const EbsnDataset ds = GenerateSyntheticMeetup(config);
  for (const Group& group : ds.groups()) {
    EXPECT_GE(group.tags.size(), 3u);
    EXPECT_LE(group.tags.size(), 10u);
  }
}

TEST(GeneratorTest, EventsInheritOrganizerTags) {
  const EbsnDataset ds = GenerateSyntheticMeetup(SmallConfig());
  for (const EventRecord& event : ds.events()) {
    EXPECT_EQ(event.tags, ds.groups()[event.organizer].tags);
  }
}

TEST(GeneratorTest, GroupPopularityIsHeavyTailed) {
  const EbsnDataset ds = GenerateSyntheticMeetup(SmallConfig());
  size_t max_size = 0;
  size_t total = 0;
  for (const Group& group : ds.groups()) {
    max_size = std::max(max_size, group.members.size());
    total += group.members.size();
  }
  const double mean = static_cast<double>(total) / ds.groups().size();
  // Zipf membership: the largest group should dwarf the average.
  EXPECT_GT(static_cast<double>(max_size), 3.0 * mean);
}

TEST(GeneratorTest, CheckinsRespectSlotRange) {
  const EbsnDataset ds = GenerateSyntheticMeetup(SmallConfig());
  EXPECT_FALSE(ds.checkins().empty());
  for (const CheckIn& checkin : ds.checkins()) {
    EXPECT_LT(checkin.slot, ds.num_slots());
    EXPECT_LT(checkin.user, ds.users().size());
  }
}

TEST(GeneratorTest, StatsReportCoversDataset) {
  const EbsnDataset ds = GenerateSyntheticMeetup(SmallConfig());
  const DatasetStats stats = ComputeDatasetStats(ds);
  EXPECT_EQ(stats.num_users, 500u);
  EXPECT_EQ(stats.num_events, 300u);
  EXPECT_GT(stats.groups_per_user.mean, 0.9);
  EXPECT_GT(stats.tags_per_event.mean, 2.9);
  EXPECT_FALSE(stats.ToString().empty());
}

}  // namespace
}  // namespace ses::ebsn
