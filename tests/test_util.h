#ifndef SES_TESTS_TEST_UTIL_H_
#define SES_TESTS_TEST_UTIL_H_

/// \file
/// Shared helpers for building small SES instances in tests.

#include <memory>
#include <utility>
#include <vector>

#include "core/instance.h"
#include "core/sigma.h"
#include "util/logging.h"
#include "util/random.h"

namespace ses::test {

/// Knobs for random small instances used by property tests.
struct RandomInstanceConfig {
  uint32_t num_users = 30;
  uint32_t num_events = 8;
  uint32_t num_intervals = 4;
  uint32_t num_locations = 3;
  double theta = 10.0;
  double xi_min = 1.0;
  double xi_max = 4.0;
  double interest_density = 0.4;  ///< P(user interested in an event)
  double competing_per_interval = 2.0;
  uint64_t seed = 42;
};

/// Builds a random, fully-validated small instance.
inline core::SesInstance MakeRandomInstance(
    const RandomInstanceConfig& config) {
  util::Rng rng(config.seed);
  core::InstanceBuilder builder;
  builder.SetNumUsers(config.num_users)
      .SetNumIntervals(config.num_intervals)
      .SetTheta(config.theta)
      .SetSigma(std::make_shared<core::HashUniformSigma>(config.seed));

  auto random_row = [&rng, &config] {
    std::vector<std::pair<core::UserIndex, float>> row;
    for (core::UserIndex u = 0; u < config.num_users; ++u) {
      if (rng.Bernoulli(config.interest_density)) {
        row.push_back(
            {u, static_cast<float>(rng.UniformDouble(0.05, 1.0))});
      }
    }
    return row;
  };

  for (uint32_t e = 0; e < config.num_events; ++e) {
    const core::LocationId location = static_cast<core::LocationId>(
        rng.NextBounded(config.num_locations));
    const double xi = rng.UniformDouble(config.xi_min, config.xi_max);
    builder.AddEvent(location, xi, random_row());
  }
  for (uint32_t t = 0; t < config.num_intervals; ++t) {
    const int count = util::PoissonSample(rng, config.competing_per_interval);
    for (int c = 0; c < count; ++c) {
      builder.AddCompetingEvent(t, random_row());
    }
  }
  auto instance = builder.Build();
  SES_CHECK(instance.ok()) << instance.status().ToString();
  return std::move(instance).value();
}

/// The medium preset shared by the api-layer suites (scheduler, session
/// cache, stress): big enough that solves do measurable work, small
/// enough for sanitizer CI. Centralized here so every suite exercises
/// the same shape instead of hand-rolling near-duplicates.
inline RandomInstanceConfig MediumInstanceConfig(uint64_t seed = 42) {
  RandomInstanceConfig config;
  config.seed = seed;
  config.num_users = 60;
  config.num_events = 20;
  config.num_intervals = 8;
  config.theta = 15.0;
  return config;
}

/// Builds the medium preset directly.
inline core::SesInstance MakeMediumInstance(uint64_t seed = 42) {
  return MakeRandomInstance(MediumInstanceConfig(seed));
}

}  // namespace ses::test

#endif  // SES_TESTS_TEST_UTIL_H_
