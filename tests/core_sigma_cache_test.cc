/// Regression suite for AttendanceModel's per-interval cache of
/// competing-event masses and sigma rows (built on an interval's second
/// load). The cache is a pure memoization: every gain, loss, and utility
/// must be bit-for-bit identical to what an uncached evaluation
/// produces. These tests pin that by comparing a long-lived (cache-warm)
/// model against freshly constructed (cache-cold) models and against the
/// reference objective.

#include <vector>

#include <gtest/gtest.h>

#include "core/attendance.h"
#include "core/greedy.h"
#include "core/lazy_greedy.h"
#include "core/local_search.h"
#include "core/objective.h"
#include "core/schedule.h"
#include "tests/test_util.h"

namespace ses::core {
namespace {

SesInstance CacheInstance(uint64_t seed = 7) {
  test::RandomInstanceConfig config;
  config.seed = seed;
  config.num_users = 50;
  config.num_events = 12;
  config.num_intervals = 5;
  config.theta = 14.0;
  config.competing_per_interval = 3.0;
  return test::MakeRandomInstance(config);
}

/// Gains of every feasible (event, interval) pair under \p model's
/// current schedule, interval-major.
std::vector<double> AllGains(const SesInstance& instance,
                             AttendanceModel& model) {
  std::vector<double> gains;
  for (IntervalIndex t = 0; t < instance.num_intervals(); ++t) {
    for (EventIndex e = 0; e < instance.num_events(); ++e) {
      if (!model.CanAssign(e, t)) continue;
      gains.push_back(model.MarginalGain(e, t));
    }
  }
  return gains;
}

TEST(SigmaCacheTest, WarmModelMatchesColdModelBitwise) {
  const SesInstance instance = CacheInstance();
  AttendanceModel warm(instance);

  // A schedule grown over several rounds; by round 1 every interval has
  // been loaded twice and the warm model answers from its cache. Each
  // round assigns event `round - 1` to its first feasible interval,
  // rotating starting intervals so several intervals get schedule mass.
  constexpr size_t kRounds = 6;
  std::vector<Assignment> applied;
  for (size_t round = 0; round <= kRounds; ++round) {
    SCOPED_TRACE(round);
    // Cold model: rebuilt from scratch, so its first full sweep runs
    // entirely on the uncached path.
    AttendanceModel cold(instance);
    for (const Assignment& a : applied) cold.Apply(a.event, a.interval);

    const std::vector<double> warm_gains = AllGains(instance, warm);
    const std::vector<double> cold_gains = AllGains(instance, cold);
    ASSERT_EQ(warm_gains.size(), cold_gains.size());
    for (size_t i = 0; i < warm_gains.size(); ++i) {
      // Bitwise: the cache stores the exact doubles the uncached path
      // accumulates, so there is no tolerance to grant.
      EXPECT_EQ(warm_gains[i], cold_gains[i]) << "gain #" << i;
    }
    EXPECT_EQ(warm.total_utility(), cold.total_utility());

    if (round < kRounds) {
      const EventIndex e = static_cast<EventIndex>(round);
      for (uint32_t offset = 0; offset < instance.num_intervals();
           ++offset) {
        const IntervalIndex t = static_cast<IntervalIndex>(
            (round + offset) % instance.num_intervals());
        if (!warm.CanAssign(e, t)) continue;
        warm.Apply(e, t);
        applied.push_back({e, t});
        break;
      }
    }
  }
  // The churn above must actually have scheduled something, or the test
  // would silently degenerate to comparing empty schedules.
  EXPECT_GE(applied.size(), 3u);
}

TEST(SigmaCacheTest, UnapplyOnCachedIntervalsMatchesReference) {
  const SesInstance instance = CacheInstance(11);
  AttendanceModel model(instance);

  // Apply/unapply churn across intervals — the local-search access
  // pattern that the cache accelerates.
  ASSERT_TRUE(model.CanAssign(0, 0));
  model.Apply(0, 0);
  ASSERT_TRUE(model.CanAssign(1, 1));
  model.Apply(1, 1);
  model.Unapply(0);
  ASSERT_TRUE(model.CanAssign(0, 2));
  model.Apply(0, 2);
  model.Unapply(1);
  ASSERT_TRUE(model.CanAssign(2, 0));
  model.Apply(2, 0);

  // The tracked utility must equal the reference objective on the same
  // schedule, and the tracked schedule must be exactly {0->2, 2->0}.
  Schedule reference(instance);
  ASSERT_TRUE(reference.Assign(0, 2).ok());
  ASSERT_TRUE(reference.Assign(2, 0).ok());
  EXPECT_EQ(model.schedule().Assignments(), reference.Assignments());
  // 1e-6 like core_attendance_test: the incremental engine keeps sigma
  // as floats, the reference objective as doubles.
  EXPECT_NEAR(model.total_utility(), TotalUtility(instance, reference),
              1e-6);
}

TEST(SigmaCacheTest, GainsMatchReferenceAssignmentScore) {
  const SesInstance instance = CacheInstance(13);
  AttendanceModel model(instance);
  ASSERT_TRUE(model.CanAssign(3, 2));
  model.Apply(3, 2);

  // Two sweeps: the first warms the cache, the second reads from it.
  // Both must agree with the from-scratch Eq. 4 reference.
  for (int sweep = 0; sweep < 2; ++sweep) {
    SCOPED_TRACE(sweep);
    Schedule mirror(instance);
    ASSERT_TRUE(mirror.Assign(3, 2).ok());
    for (IntervalIndex t = 0; t < instance.num_intervals(); ++t) {
      for (EventIndex e = 0; e < instance.num_events(); ++e) {
        if (!model.CanAssign(e, t)) continue;
        EXPECT_NEAR(model.MarginalGain(e, t),
                    AssignmentScore(instance, mirror, e, t), 1e-6)
            << "e=" << e << " t=" << t;
      }
    }
  }
}

TEST(SigmaCacheTest, SolverUtilitiesPinnedToReferenceObjective) {
  const SesInstance instance = CacheInstance(17);
  SolverOptions options;
  options.k = 5;
  options.seed = 3;
  options.max_iterations = 2000;

  GreedySolver grd;
  LazyGreedySolver lazy;
  LocalSearchSolver ls;
  for (Solver* solver : std::initializer_list<Solver*>{&grd, &lazy, &ls}) {
    auto result = solver->Solve(instance, options);
    ASSERT_TRUE(result.ok()) << solver->name();
    Schedule schedule(instance);
    for (const Assignment& a : result->assignments) {
      ASSERT_TRUE(schedule.Assign(a.event, a.interval).ok());
    }
    EXPECT_NEAR(result->utility, TotalUtility(instance, schedule), 1e-9)
        << solver->name();  // exact: both sides use the reference objective

    // Determinism across reruns: the cache must not perturb a single
    // bit of the answer.
    auto rerun = solver->Solve(instance, options);
    ASSERT_TRUE(rerun.ok());
    EXPECT_EQ(result->assignments, rerun->assignments) << solver->name();
    EXPECT_EQ(result->utility, rerun->utility) << solver->name();
  }
}

// --- LRU capacity bound ---------------------------------------------------

TEST(SigmaCacheLruTest, CapacityTwoMatchesUnboundedBitwise) {
  const SesInstance instance = CacheInstance(23);
  // Capacity 2 against 5 intervals: the round-robin sweeps below force
  // constant materialize/evict churn in the capped model, which must
  // not perturb a single bit relative to the unbounded one.
  AttendanceModel capped(instance, /*sigma_cache_capacity=*/2);
  AttendanceModel unbounded(instance);

  std::vector<Assignment> applied;
  for (size_t round = 0; round < 6; ++round) {
    SCOPED_TRACE(round);
    const std::vector<double> capped_gains = AllGains(instance, capped);
    const std::vector<double> unbounded_gains =
        AllGains(instance, unbounded);
    ASSERT_EQ(capped_gains.size(), unbounded_gains.size());
    for (size_t i = 0; i < capped_gains.size(); ++i) {
      EXPECT_EQ(capped_gains[i], unbounded_gains[i]) << "gain #" << i;
    }
    EXPECT_EQ(capped.total_utility(), unbounded.total_utility());

    // Grow both schedules identically, rotating intervals so several
    // cache entries keep cycling through the capped model.
    const EventIndex e = static_cast<EventIndex>(round);
    for (uint32_t offset = 0; offset < instance.num_intervals(); ++offset) {
      const IntervalIndex t = static_cast<IntervalIndex>(
          (round + offset) % instance.num_intervals());
      if (!capped.CanAssign(e, t)) continue;
      capped.Apply(e, t);
      unbounded.Apply(e, t);
      applied.push_back({e, t});
      break;
    }
  }
  EXPECT_GE(applied.size(), 3u);

  // Apply/unapply churn on top — the eviction-heavy local-search shape.
  for (const Assignment& a : applied) {
    capped.Unapply(a.event);
    unbounded.Unapply(a.event);
    EXPECT_EQ(capped.total_utility(), unbounded.total_utility());
  }
}

TEST(SigmaCacheLruTest, SolversBitIdenticalAtCapacityTwo) {
  const SesInstance instance = CacheInstance(29);
  SolverOptions reference_options;
  reference_options.k = 5;
  reference_options.seed = 3;
  reference_options.max_iterations = 2000;

  SolverOptions capped_options = reference_options;
  capped_options.sigma_cache_capacity = 2;

  GreedySolver grd;
  LazyGreedySolver lazy;
  LocalSearchSolver ls;
  for (Solver* solver : std::initializer_list<Solver*>{&grd, &lazy, &ls}) {
    auto reference = solver->Solve(instance, reference_options);
    auto capped = solver->Solve(instance, capped_options);
    ASSERT_TRUE(reference.ok()) << solver->name();
    ASSERT_TRUE(capped.ok()) << solver->name();
    EXPECT_EQ(reference->assignments, capped->assignments)
        << solver->name();
    EXPECT_EQ(reference->utility, capped->utility) << solver->name();
    EXPECT_EQ(reference->stats.gain_evaluations,
              capped->stats.gain_evaluations)
        << solver->name();
  }
}

}  // namespace
}  // namespace ses::core
